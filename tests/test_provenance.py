"""Decision provenance (``repro explain``) and the benchmark regression
observatory (``repro.obs.history`` + ``repro.obs.regress``).

Covers the acceptance surface of DESIGN.md §8: every bundled app
compiles to a non-empty, reason-bearing ledger; the interesting reason
paths (rejected fusion with the blocking dependency named, Unknown
stencils with the failed affine test) actually occur; digests are
stable across compiles and drift when an optimization is ablated; the
regression checker flags real regressions and ignores noise; and the
whole layer costs nothing when no ledger scope is active.
"""

import dataclasses
import io
import json
from contextlib import redirect_stdout

import pytest

from repro import tools
from repro.bench import get_bundle
from repro.obs.diagnostics import Severity
from repro.obs.history import RunRecord, append_record, load_history
from repro.obs.provenance import (DecisionKind, DecisionLedger, REJECTED,
                                  active, diff_ledgers, emit, ledger_scope,
                                  strip_ids)
from repro.obs.regress import (DEFAULT_WALL_PCT, check_records, main as
                               regress_main, trend_table)
from repro.tools import _APPS, _explain_compile

EXPLAIN_APPS = ["kmeans", "logreg", "gda", "q1", "gene", "pagerank",
                "triangle", "gibbs"]


def explain(app, variant=None):
    return _explain_compile(app, "distributed", variant=variant)


# ---------------------------------------------------------------------------
# the ledger itself
# ---------------------------------------------------------------------------

class TestLedger:
    @pytest.mark.parametrize("app", EXPLAIN_APPS)
    def test_every_app_has_a_reasoned_ledger(self, app):
        led = explain(app)
        assert len(led) > 0
        for d in led.decisions:
            assert d.reason, f"{app}: {d.kind.value} at {d.site} lacks a reason"
            assert d.pass_name, f"{app}: decision not attributed to a pass"

    def test_kmeans_unknown_stencil_names_failed_test(self):
        led = explain("kmeans")
        unknown = [d for d in led.of_kind(DecisionKind.STENCIL)
                   if d.outcome == "Unknown"]
        assert unknown
        reasons = " ".join(d.reason for d in unknown)
        # the reason names *which* affine test failed, not just "Unknown"
        assert "data-dependent" in reasons or "cannot bound" in reasons

    def test_q1_records_applied_and_rejected_soa(self):
        led = explain("q1")
        outcomes = {d.outcome for d in led.of_kind(DecisionKind.SOA)}
        assert {"applied", REJECTED} <= outcomes

    @pytest.mark.parametrize("app", ["logreg", "pagerank"])
    def test_rejected_fusion_names_blocker(self, app):
        led = explain(app)
        rej = [d for d in led.decisions
               if d.outcome == REJECTED and d.kind in
               (DecisionKind.FUSION_VERTICAL, DecisionKind.FUSION_HORIZONTAL)]
        assert rej, f"{app}: expected at least one rejected fusion"
        # each rejection names what blocked it (a dependency or an access)
        for d in rej:
            assert ("depends on" in d.reason or "indexed by" in d.reason
                    or "reads" in d.reason or "filter" in d.reason)

    def test_dedup_counts_instead_of_flooding(self):
        led = DecisionLedger()
        led.begin_pass("p", "phase")
        for _ in range(5):
            led.record(DecisionKind.STENCIL, "loop1", "All", "same reason")
        assert len(led) == 1
        assert led.decisions[0].count == 5

    def test_for_loop_filter_ignores_ids(self):
        led = explain("kmeans")
        sites = {d.site for d in led.decisions}
        site = next(s for s in sites if s[0].isalpha())
        prefix = site.rstrip("0123456789")
        assert led.for_loop(prefix)  # 'mapidx' matches mapidx69
        assert led.for_loop(site)

    def test_render_and_json_round_trip(self):
        led = explain("kmeans")
        text = led.render(title="t")
        assert "digest:" in text and "[" in text
        doc = led.to_json()
        assert doc["digest"] == led.digest()
        assert len(doc["decisions"]) == len(led.decisions)
        json.dumps(doc)  # must be serializable as-is


# ---------------------------------------------------------------------------
# digests and diffs
# ---------------------------------------------------------------------------

class TestDigest:
    def test_digest_stable_across_compiles(self):
        assert explain("kmeans").digest() == explain("kmeans").digest()

    def test_digest_drifts_when_fusion_ablated(self):
        assert explain("kmeans").digest() != \
            explain("kmeans", variant="no-fusion").digest()

    def test_strip_ids_normalizes_sym_numbers(self):
        assert strip_ids("mapidx69 uses bktred131") == \
            strip_ids("mapidx42 uses bktred7")

    def test_diff_identical_ledgers(self):
        a, b = explain("gene"), explain("gene")
        assert "identical decision sets" in diff_ledgers(a, b)

    def test_diff_shows_ablated_fusions(self):
        a = explain("kmeans")
        b = explain("kmeans", variant="no-fusion")
        out = diff_ledgers(a, b, "default", "no-fusion")
        assert "only in default" in out
        assert "fusion-vertical applied" in out


# ---------------------------------------------------------------------------
# zero overhead when disabled
# ---------------------------------------------------------------------------

class TestZeroOverhead:
    def test_execstats_identical_with_and_without_ledger(self):
        from repro.backend import run_program_numpy
        b = get_bundle("kmeans")
        compiled = b.compiled("opt")
        prepared = compiled.prepare_inputs(b.inputs)
        _, bare, _ = run_program_numpy(compiled.program, prepared)
        with ledger_scope(DecisionLedger()):
            _, scoped, _ = run_program_numpy(compiled.program, prepared)
        assert dataclasses.asdict(bare) == dataclasses.asdict(scoped)

    def test_emit_is_noop_without_scope(self):
        assert active() is None
        emit(DecisionKind.STENCIL, "x", "All", "reason")  # must not raise

    def test_scope_none_disables_inside_outer_scope(self):
        outer = DecisionLedger()
        with ledger_scope(outer):
            with ledger_scope(None):
                emit(DecisionKind.STENCIL, "x", "All", "reason")
            emit(DecisionKind.STENCIL, "y", "All", "reason")
        assert [d.site for d in outer.decisions] == ["y"]


# ---------------------------------------------------------------------------
# severity enum (was a bare string literal)
# ---------------------------------------------------------------------------

class TestSeverity:
    def test_of_accepts_known_names(self):
        assert Severity.of("warning") is Severity.WARNING
        assert Severity.of(Severity.INFO) is Severity.INFO

    def test_of_rejects_typo(self):
        with pytest.raises(ValueError):
            Severity.of("warnign")

    def test_partition_warnings_are_enum_typed(self):
        compiled = get_bundle("kmeans").compiled("opt")
        for d in compiled.diagnostics:
            assert isinstance(d.severity, Severity)


# ---------------------------------------------------------------------------
# history store
# ---------------------------------------------------------------------------

def rec(app="kmeans", wall=0.1, cycles=1000, digest="aaaa", fallbacks=0):
    return RunRecord(app=app, backend="numpy", git_sha="abc1234",
                     wall_s=wall, sim_s=0.01, cycles=cycles,
                     fallbacks=fallbacks, digest=digest)


class TestHistory:
    def test_append_and_load_round_trip(self, tmp_path):
        append_record(rec(wall=0.1), root=tmp_path)
        append_record(rec(wall=0.2), root=tmp_path)
        out = load_history("kmeans", root=tmp_path)
        assert [r.wall_s for r in out] == [0.1, 0.2]
        assert all(r.timestamp > 0 for r in out)

    def test_torn_line_is_skipped(self, tmp_path):
        p = append_record(rec(), root=tmp_path)
        with p.open("a") as fh:
            fh.write('{"app": "kmeans", "tru')  # killed mid-write
        assert len(load_history("kmeans", root=tmp_path)) == 1

    def test_unknown_keys_survive_in_extra(self):
        doc = json.loads(rec().to_json_line())
        doc["future_field"] = 7
        r = RunRecord.from_dict(doc)
        assert r.extra["future_field"] == 7

    def _write_lines(self, tmp_path, walls_and_ts):
        # craft the JSONL by hand: append_record stamps timestamps, and
        # these tests need explicit (possibly zero) ones
        p = tmp_path / "kmeans.jsonl"
        with p.open("w") as fh:
            for wall, ts in walls_and_ts:
                r = rec(wall=wall)
                r.timestamp = ts
                fh.write(r.to_json_line() + "\n")
        return p

    def test_out_of_order_lines_sorted_by_timestamp(self, tmp_path):
        # records merged from CI artifact caches can interleave: the
        # newest line is NOT last in the file, but must be after loading
        self._write_lines(tmp_path,
                          [(0.3, 300.0), (0.1, 100.0), (0.2, 200.0)])
        out = load_history("kmeans", root=tmp_path)
        assert [r.wall_s for r in out] == [0.1, 0.2, 0.3]

    def test_zero_timestamp_records_keep_file_order(self, tmp_path):
        # legacy lines with the 0.0 default glue to their predecessor
        # and stay in file order relative to each other
        self._write_lines(tmp_path,
                          [(0.1, 0.0), (0.2, 0.0), (0.3, 50.0),
                           (0.4, 0.0), (0.35, 25.0)])
        out = load_history("kmeans", root=tmp_path)
        assert [r.wall_s for r in out] == [0.1, 0.2, 0.35, 0.3, 0.4]


# ---------------------------------------------------------------------------
# regression checker
# ---------------------------------------------------------------------------

class TestRegress:
    def test_empty_history_bootstraps(self):
        assert check_records("kmeans", []).status == "bootstrap"
        assert check_records("kmeans", [rec()]).status == "bootstrap"

    def test_identical_runs_pass(self):
        v = check_records("kmeans", [rec(), rec(), rec(), rec()])
        assert v.status == "ok" and v.ok

    def test_short_history_reports_warming(self):
        # with fewer than MIN_WALL_WINDOW prior records the noisy wall
        # gate hasn't armed yet: status says so, but nothing fails
        v = check_records("kmeans", [rec(), rec(), rec()])
        assert v.status == "warming" and v.ok and not v.problems

    def test_warming_suppresses_wall_gate_only(self):
        # a single noisy bootstrap record must not become the baseline:
        # +100% wall over one prior record is ignored while warming...
        v = check_records("kmeans", [rec(wall=0.1), rec(wall=0.2)])
        assert v.status == "warming" and v.ok
        # ...but the deterministic gates still fire during warmup
        v = check_records("kmeans", [rec(cycles=1000), rec(cycles=1100)])
        assert v.status == "regression"
        assert any("cycle regression" in p for p in v.problems)

    def test_wall_gate_arms_once_window_filled(self):
        hist = [rec(wall=0.1)] * 3 + [rec(wall=0.2)]
        v = check_records("kmeans", hist)
        assert v.status == "regression"
        assert any("wall-clock regression" in p for p in v.problems)

    def test_wall_regression_detected(self):
        hist = [rec(wall=0.1)] * 5 + [rec(wall=0.12)]  # +20% > 10%
        v = check_records("kmeans", hist)
        assert v.status == "regression"
        assert any("wall-clock regression" in p for p in v.problems)

    def test_noise_below_threshold_ignored(self):
        hist = [rec(wall=0.1)] * 5 + [rec(wall=0.105)]  # +5% < 10%
        assert check_records("kmeans", hist).ok

    def test_digest_drift_flagged(self):
        hist = [rec(digest="aaaa"), rec(digest="bbbb")]
        v = check_records("kmeans", hist)
        assert not v.ok
        assert any("digest drift" in p for p in v.problems)

    def test_cycle_regression_detected(self):
        hist = [rec(cycles=1000), rec(cycles=1000), rec(cycles=1010)]  # +1%
        v = check_records("kmeans", hist)
        assert any("cycle regression" in p for p in v.problems)

    def test_fallback_increase_flagged(self):
        hist = [rec(fallbacks=0), rec(fallbacks=2)]
        v = check_records("kmeans", hist)
        assert any("fallbacks increased" in p for p in v.problems)

    def test_trend_table_renders(self):
        t = trend_table([check_records("kmeans", [rec(), rec()])])
        assert "kmeans" in t and "status" in t

    def test_cli_exit_codes(self, tmp_path):
        # empty store: bootstrap, ok
        assert regress_main(["--history", str(tmp_path)]) == 0
        for r in [rec(wall=0.1)] * 5 + [rec(wall=0.2)]:
            append_record(r, root=tmp_path)
        buf = io.StringIO()
        with redirect_stdout(buf):
            assert regress_main(["--history", str(tmp_path)]) == 1
        assert "REGRESSION kmeans" in buf.getvalue()
        assert regress_main(["--history", str(tmp_path),
                             "--window", "0"]) == 2
        # a generous threshold lets the same history pass
        with redirect_stdout(io.StringIO()):
            assert regress_main(["--history", str(tmp_path),
                                 "--wall-pct", "200"]) == 0

    def test_default_wall_threshold_separates_20pct_from_noise(self):
        assert DEFAULT_WALL_PCT < 20.0
        assert DEFAULT_WALL_PCT >= 5.0


# ---------------------------------------------------------------------------
# the explain CLI
# ---------------------------------------------------------------------------

class TestExplainCLI:
    def run(self, *argv):
        buf = io.StringIO()
        with redirect_stdout(buf):
            code = tools.main(list(argv))
        return code, buf.getvalue()

    def test_explain_app_ok(self):
        code, out = self.run("explain", "kmeans")
        assert code == 0
        assert "digest:" in out and "fusion-vertical applied" in out

    def test_explain_json(self):
        code, out = self.run("explain", "kmeans", "--json")
        assert code == 0
        assert json.loads(out)["decisions"]

    def test_explain_loop_filter(self):
        code, out = self.run("explain", "kmeans", "--loop", "bktred")
        assert code == 0
        assert "bktred" in out

    def test_explain_diff(self):
        code, out = self.run("explain", "kmeans", "--explain-diff",
                             "no-fusion")
        assert code == 0
        assert "only in default" in out

    def test_explain_usage_errors(self):
        assert self.run("explain")[0] == 2
        assert self.run("explain", "nosuchapp")[0] == 2

    def test_flags_without_app_is_usage_error(self):
        assert self.run("--report")[0] == 2
        assert self.run("--trace")[0] == 2

    def test_list_still_exits_ok(self):
        code, out = self.run("--list")
        assert code == 0 and "kmeans" in out

    def test_every_explain_app_is_a_tools_app(self):
        assert set(EXPLAIN_APPS) <= set(_APPS)
