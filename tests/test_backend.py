"""Differential tests for the vectorized NumPy backend.

The backend contract is strict: for any program the numpy backend must
produce results *and* ``ExecStats`` identical to the reference
interpreter — cycle accounting is analytic, so vectorizing execution may
change wall-clock only, never the priced cost. Every loop it cannot
vectorize must fall back to the reference path (recorded, not silent),
which keeps the contract trivially true for unsupported shapes.

All eight bundled apps must additionally run with *zero* fallbacks —
the acceptance bar for the backend actually covering the paper's
workloads.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import frontend as F
from repro.backend import (FallbackRecord, resolve_backend,
                           resolve_backend_ex, run_program_numpy)
from repro.bench.apps import get_bundle
from repro.core import run_program
from repro.core import types as T
from repro.core.values import deep_eq
from repro.pipeline import compile_program, optimize

APPS = ["kmeans", "logreg", "gda", "q1", "gene", "pagerank", "triangle",
        "gibbs"]

STAT_FIELDS = ["total_cycles", "elements_read", "bytes_read",
               "elements_emitted", "bytes_alloc", "loops_executed",
               "loop_iterations"]


def assert_stats_equal(ref, vec):
    for f in STAT_FIELDS:
        assert getattr(ref, f) == getattr(vec, f), (
            f"stats field {f}: reference={getattr(ref, f)!r} "
            f"numpy={getattr(vec, f)!r}")
    assert dict(ref.op_counts) == dict(vec.op_counts)
    # per-def records carry the essential/overhead split the pricing
    # model consumes — they must match record-for-record
    assert ref.def_records == vec.def_records


def run_both(prog, inputs):
    ref_results, ref_stats = run_program(prog, inputs)
    vec_results, vec_stats, fallbacks = run_program_numpy(prog, inputs)
    assert deep_eq(ref_results, vec_results)
    assert_stats_equal(ref_stats, vec_stats)
    return fallbacks


# ---------------------------------------------------------------------------
# The eight bundled applications
# ---------------------------------------------------------------------------

class TestBundledApps:
    @pytest.mark.parametrize("app", APPS)
    def test_identical_and_fully_vectorized(self, app):
        bundle = get_bundle(app)
        compiled = bundle.compiled("opt")
        inputs = compiled.prepare_inputs(bundle.inputs)
        fallbacks = run_both(compiled.program, inputs)
        assert fallbacks == [], (
            f"{app} fell back to the interpreter: "
            f"{[(f.loop, f.reason) for f in fallbacks]}")

    def test_capture_records_backend_and_per_iter(self):
        from repro.runtime.executor import capture_run
        bundle = get_bundle("logreg")
        ref = capture_run(bundle.compiled("opt"), bundle.inputs,
                          backend="reference")
        vec = capture_run(bundle.compiled("opt"), bundle.inputs,
                          backend="numpy")
        assert ref.backend == "reference" and vec.backend == "numpy"
        assert vec.fallbacks == []
        assert deep_eq(ref.results, vec.results)
        assert_stats_equal(ref.stats, vec.stats)
        # the per-iteration cost streams feed load-imbalance bounds and
        # must match element-for-element
        assert set(ref.per_iter) == set(vec.per_iter)
        for k in ref.per_iter:
            assert ref.per_iter[k] == vec.per_iter[k]

    def test_simulated_price_backend_invariant(self):
        bundle = get_bundle("q1")
        ref = bundle.simulate("opt", backend="reference")
        vec = bundle.simulate("opt", backend="numpy")
        assert ref.total_seconds == vec.total_seconds
        assert vec.backend == "numpy" and vec.fallbacks == []


# ---------------------------------------------------------------------------
# Backend selection plumbing
# ---------------------------------------------------------------------------

class TestSelection:
    def test_resolve_policy(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None) == "reference"
        assert resolve_backend("numpy") == "numpy"
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert resolve_backend(None) == "numpy"
        assert resolve_backend("reference") == "reference"
        with pytest.raises(ValueError):
            resolve_backend("cuda")

    def test_blank_env_is_an_error_not_default(self, monkeypatch):
        # REPRO_BACKEND= (set but empty) used to silently mean "default";
        # a mistyped CI matrix leg must fail loudly instead
        monkeypatch.setenv("REPRO_BACKEND", "")
        with pytest.raises(ValueError, match="blank"):
            resolve_backend(None)
        monkeypatch.setenv("REPRO_BACKEND", "   ")
        with pytest.raises(ValueError, match="blank"):
            resolve_backend(None)
        # an explicit argument still wins over the broken env
        assert resolve_backend("numpy") == "numpy"

    def test_env_whitespace_is_stripped(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "  numpy \n")
        assert resolve_backend(None) == "numpy"
        assert resolve_backend(" reference ") == "reference"
        with pytest.raises(ValueError, match="blank"):
            resolve_backend("")

    def test_resolution_source_is_reported(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend_ex(None) == ("reference", "default")
        assert resolve_backend_ex("numpy") == ("numpy", "argument")
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert resolve_backend_ex(None) == ("numpy", "env:REPRO_BACKEND")

    def test_compiled_run_backend_param(self):
        bundle = get_bundle("logreg")
        compiled = bundle.compiled("opt")
        r1, s1 = compiled.run(bundle.inputs, backend="reference")
        r2, s2 = compiled.run(bundle.inputs, backend="numpy")
        assert deep_eq(r1, r2)
        assert_stats_equal(s1, s2)


# ---------------------------------------------------------------------------
# Recorded fallback on unvectorizable loops
# ---------------------------------------------------------------------------

class TestFallback:
    def test_non_associative_reducer_falls_back(self):
        # a - b is not associative: the planner must reject the ufunc
        # path and the loop must still produce interpreter-identical
        # results through the recorded fallback
        prog = F.build(lambda xs: xs.reduce(lambda a, b: a - b, 0),
                       [F.InputSpec("xs", T.Coll(T.INT), True)])
        inputs = {"xs": [5, 3, 9, 1]}
        ref_results, ref_stats = run_program(prog, inputs)
        vec_results, vec_stats, fallbacks = run_program_numpy(prog, inputs)
        assert deep_eq(ref_results, vec_results)
        assert_stats_equal(ref_stats, vec_stats)
        assert len(fallbacks) == 1
        assert isinstance(fallbacks[0], FallbackRecord)
        assert "associative" in fallbacks[0].reason


# ---------------------------------------------------------------------------
# Alpha-key cache: id() reuse must never alias blocks
# ---------------------------------------------------------------------------

class TestAlphaCache:
    """The loop-share plan caches alpha keys by ``id(block)``. Python
    recycles addresses, so a stale entry for a dead block must never
    serve a new block that lands at the same address — that aliasing
    nondeterministically flipped sharing (and backend-plan) decisions
    between otherwise identical compiles."""

    @staticmethod
    def _some_block():
        prog = F.build(lambda xs: xs.reduce(lambda a, b: a + b, 0),
                       [F.InputSpec("xs", T.Coll(T.INT), True)])
        from repro.core.multiloop import MultiLoop
        for d in prog.body.stmts:
            if isinstance(d.op, MultiLoop):
                return d.op.gens[0].value
        raise AssertionError("no multiloop staged")

    def test_dead_block_entry_is_evicted(self):
        import gc
        from repro.core.interp import _ALPHA_CACHE, _alpha_of
        block = self._some_block()
        _alpha_of(block)
        bid = id(block)
        assert bid in _ALPHA_CACHE
        del block
        gc.collect()
        assert bid not in _ALPHA_CACHE

    def test_recycled_id_recomputes_instead_of_aliasing(self):
        import weakref
        from repro.core.interp import _ALPHA_CACHE, _alpha_of
        block = self._some_block()
        true_key = _alpha_of(block)
        # plant what an id() collision with a dead block looks like: an
        # entry under this block's id whose referent is gone
        dead = type("Dead", (), {})()
        _ALPHA_CACHE[id(block)] = (weakref.ref(dead), ("k", "stale"))
        del dead
        assert _alpha_of(block) == true_key


# ---------------------------------------------------------------------------
# Property: random small multiloops, both backends agree exactly
# ---------------------------------------------------------------------------

SETTINGS = dict(max_examples=40, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

ints_data = st.lists(st.integers(min_value=-50, max_value=50),
                     min_size=0, max_size=30)

# map/filter bodies (filter introduces a generator cond)
_OPS = [
    ("map_add", lambda r: r.map(lambda x: x + 3)),
    ("map_mul", lambda r: r.map(lambda x: x * 2)),
    ("filter_even", lambda r: r.filter(lambda x: x % 2 == 0)),
    ("filter_pos", lambda r: r.filter(lambda x: x > 0)),
]

# sinks cover all four generator kinds: Collect, Reduce, BucketCollect,
# BucketReduce
_SINKS = [
    ("collect", lambda r: r),
    ("sum", lambda r: r.sum()),
    ("min", lambda r: r.reduce(lambda a, b: F.fmin(a, b), 99)),
    ("group_by", lambda r: r.group_by(lambda x: x % 2)),
    ("group_sum", lambda r: r.group_by_reduce(lambda x: x % 3, lambda x: x,
                                              lambda a, b: a + b)),
]

pipeline_strategy = st.tuples(
    st.lists(st.sampled_from(_OPS), min_size=0, max_size=3),
    st.lists(st.sampled_from(_SINKS), min_size=1, max_size=2))


def build_pipeline(ops, sinks):
    def fn(xs):
        r = xs
        for _, op in ops:
            r = op(r)
        outs = tuple(sink(r) for _, sink in sinks)
        return outs if len(outs) > 1 else outs[0]
    return F.build(fn, [F.InputSpec("xs", T.Coll(T.INT), True)])


class TestPropertyDifferential:
    @given(pipeline_strategy, ints_data)
    @settings(**SETTINGS)
    def test_backends_agree_on_random_multiloops(self, spec, data):
        ops, sinks = spec
        prog = build_pipeline(ops, sinks)
        run_both(prog, {"xs": data})

    @given(pipeline_strategy, ints_data)
    @settings(**SETTINGS)
    def test_backends_agree_on_fused_programs(self, spec, data):
        # two sinks off one shared pipeline fuse horizontally into
        # multi-generator loops; optimize() also fuses vertically
        ops, sinks = spec
        prog = optimize(build_pipeline(ops, sinks))
        run_both(prog, {"xs": data})

    @given(pipeline_strategy, ints_data)
    @settings(**SETTINGS)
    def test_backends_agree_after_full_compile(self, spec, data):
        ops, sinks = spec
        compiled = compile_program(build_pipeline(ops, sinks),
                                   "distributed")
        inputs = compiled.prepare_inputs({"xs": data})
        run_both(compiled.program, inputs)
