"""Observability layer: span trees, metrics, typed diagnostics, and the
Chrome-trace exporter — plus the guarantee that all of it costs nothing
when disabled."""

import io
import json
from contextlib import redirect_stdout

import pytest

from repro import tools
from repro.bench import get_bundle
from repro.bench.apps import _FACTORIES
from repro.obs import (DiagCategory, MetricsRegistry, RequestContext,
                       RequestTimeline, Span, Tracer, chrome_trace_events,
                       collapse_stacks, profile_report, prometheus_text,
                       render_collapsed, render_spans, write_chrome_trace,
                       write_collapsed, write_prometheus)
from repro.obs.check import validate_events, validate_file
from repro.runtime import set_metrics, set_reader_location
from repro.runtime.distarray import PartitionedArray

APPS = sorted(_FACTORIES)

TOL = 1e-9


def traced(name):
    """Price a bundled app with a tracer attached; returns (sim, root)."""
    tracer = Tracer()
    sim = get_bundle(name).simulate(tracer=tracer)
    return sim, tracer.last_run


# ---------------------------------------------------------------------------
# span trees
# ---------------------------------------------------------------------------

class TestSpanTree:
    @pytest.mark.parametrize("name", APPS)
    def test_well_formed(self, name):
        sim, root = traced(name)
        assert root is not None and root.kind == "run"
        # every child interval nests inside its parent
        def check(parent):
            for c in parent.children:
                assert parent.contains(c, TOL), (parent, c)
                check(c)
        check(root)
        # the loop layer tiles [0, total] back-to-back
        loops = [c for c in root.children if c.kind == "loop"]
        assert len(loops) == len(sim.loops)
        cursor = 0.0
        for sp in loops:
            assert sp.start_s == pytest.approx(cursor, abs=TOL)
            cursor = sp.end_s
        assert cursor == pytest.approx(sim.total_seconds, abs=TOL)
        assert root.dur_s == pytest.approx(sim.total_seconds, abs=TOL)

    @pytest.mark.parametrize("name", APPS)
    def test_breakdown_identity(self, name):
        """time_s == max(compute, memory) + comm + overhead, and the span
        attributes carry exactly the LoopSim split."""
        sim, root = traced(name)
        loops = {sp.name: sp for sp in root.children if sp.kind == "loop"}
        for ls in sim.loops:
            assert ls.time_s == pytest.approx(
                max(ls.compute_s, ls.memory_s) + ls.comm_s + ls.overhead_s)
            sp = loops[ls.name]
            assert sp.dur_s == pytest.approx(ls.time_s, abs=TOL)
            for k in ("compute_s", "memory_s", "comm_s", "overhead_s"):
                assert sp.attrs[k] == getattr(ls, k)
        assert sum(l.time_s for l in sim.loops) == pytest.approx(
            sim.total_seconds)

    def test_machine_and_socket_layers(self):
        _, root = traced("kmeans")
        kinds = {sp.kind for sp, _ in root.walk()}
        assert {"run", "loop", "machine", "socket"} <= kinds
        # machine chunks sit on the parallel region of their loop
        for sp, _ in root.walk():
            if sp.kind == "machine":
                assert sp.attrs.get("machine") is not None
                assert sp.attrs["iter_hi"] >= sp.attrs["iter_lo"]

    def test_gpu_layer(self):
        from repro.runtime import GPU_CLUSTER, single_node
        tracer = Tracer()
        get_bundle("kmeans").simulate(
            "gpu", cluster=single_node(GPU_CLUSTER), use_gpu=True,
            gpu_transposed=True, tracer=tracer)
        kinds = {sp.kind for sp, _ in tracer.last_run.walk()}
        assert "gpu" in kinds

    def test_render_spans(self):
        _, root = traced("logreg")
        text = render_spans(root)
        assert "run:" in text and "loop:" in text and "ms" in text


# ---------------------------------------------------------------------------
# zero cost when disabled
# ---------------------------------------------------------------------------

class TestZeroCost:
    @pytest.mark.parametrize("name", APPS)
    def test_tracing_does_not_change_timing(self, name):
        plain = get_bundle(name).simulate()
        observed = get_bundle(name).simulate(tracer=Tracer(),
                                             metrics=MetricsRegistry())
        assert plain.total_seconds == observed.total_seconds  # bit-exact
        for a, b in zip(plain.loops, observed.loops):
            assert (a.compute_s, a.memory_s, a.comm_s, a.overhead_s) == \
                   (b.compute_s, b.memory_s, b.comm_s, b.overhead_s)

    def test_no_detail_allocated_when_disabled(self):
        sim = get_bundle("kmeans").simulate()
        assert all(ls.detail is None for ls in sim.loops)

    def test_disabled_tracer_emits_nothing(self):
        tracer = Tracer(enabled=False)
        get_bundle("kmeans").simulate(tracer=tracer)
        assert tracer.runs == []


# ---------------------------------------------------------------------------
# Chrome trace export
# ---------------------------------------------------------------------------

class TestChromeTrace:
    def test_events_validate(self):
        _, root = traced("q1")
        events = chrome_trace_events(root)
        assert validate_events(events) == []
        xs = [e for e in events if e["ph"] == "X"]
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in xs)
        # metadata names the process and every track
        metas = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in metas)
        assert {e["tid"] for e in metas if e["name"] == "thread_name"} >= \
               {e["tid"] for e in xs}

    def test_file_round_trip(self, tmp_path):
        sim, root = traced("gene")
        path = tmp_path / "gene.json"
        write_chrome_trace(str(path), root)
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert validate_file(str(path)) == []
        run = next(e for e in doc["traceEvents"] if e.get("cat") == "run")
        assert run["dur"] == pytest.approx(sim.total_seconds * 1e6, rel=1e-6)

    def test_event_order_deterministic_under_child_permutation(self):
        # two structurally identical trees whose children were recorded
        # in different orders must export byte-identical event streams —
        # the exporter sorts on (pid, tid, ts, -dur, cat, name)
        def tree():
            root = Span("run", "run", 0.0, 10.0)
            a = root.child("loopA", "loop", 0.0, 4.0)
            a.child("loopA/m0", "machine", 0.0, 2.0)
            a.child("loopA/m1", "machine", 0.0, 2.0)
            root.child("loopB", "loop", 4.0, 6.0)
            return root

        t1, t2 = tree(), tree()
        t2.children.reverse()
        t2.children[-1].children.reverse()
        e1, e2 = chrome_trace_events(t1), chrome_trace_events(t2)
        assert e1 == e2
        assert json.dumps(e1, sort_keys=True) == json.dumps(e2,
                                                            sort_keys=True)

    def test_event_order_sorted_within_track(self):
        _, root = traced("kmeans")
        xs = [e for e in chrome_trace_events(root) if e["ph"] == "X"]
        keys = [(e["pid"], e["tid"], e["ts"], -e["dur"], e["cat"], e["name"])
                for e in xs]
        assert keys == sorted(keys)

    def test_validator_rejects_bad_traces(self, tmp_path):
        assert validate_events([]) != []
        assert validate_events([{"ph": "X", "name": "a", "pid": 1, "tid": 0,
                                 "ts": -1, "dur": 2}]) != []
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert validate_file(str(bad)) != []
        from repro.obs import check
        assert check.main([str(bad)]) == 1
        assert check.main([]) == 2


# ---------------------------------------------------------------------------
# flow events (request -> batch arrows)
# ---------------------------------------------------------------------------

def _slice(name, pid, tid, ts, dur, cat="x"):
    return {"name": name, "cat": cat, "ph": "X", "pid": pid, "tid": tid,
            "ts": ts, "dur": dur}


class TestFlowValidation:
    BASE = [_slice("run", 1, 0, 0.0, 100.0, cat="run"),
            _slice("b0", 1, 1, 10.0, 20.0),
            _slice("r0", 2, 0, 0.0, 30.0)]

    def test_valid_flow_passes(self):
        events = self.BASE + [
            {"name": "req", "cat": "flow", "ph": "s", "id": 7,
             "pid": 2, "tid": 0, "ts": 10.0},
            {"name": "req", "cat": "flow", "ph": "f", "bp": "e", "id": 7,
             "pid": 1, "tid": 1, "ts": 10.0}]
        assert validate_events(events) == []

    def test_unpaired_flow_rejected(self):
        events = self.BASE + [
            {"name": "req", "cat": "flow", "ph": "s", "id": 7,
             "pid": 2, "tid": 0, "ts": 10.0}]
        errs = validate_events(events)
        assert any("one start and one finish" in e for e in errs)

    def test_backwards_flow_rejected(self):
        events = self.BASE + [
            {"name": "req", "cat": "flow", "ph": "s", "id": 7,
             "pid": 2, "tid": 0, "ts": 25.0},
            {"name": "req", "cat": "flow", "ph": "f", "bp": "e", "id": 7,
             "pid": 1, "tid": 1, "ts": 10.0}]
        errs = validate_events(events)
        assert any("precedes start" in e for e in errs)

    def test_dangling_endpoint_rejected(self):
        # finish endpoint on a track with no enclosing slice — the viewer
        # would silently drop the arrow, so the validator must not
        events = self.BASE + [
            {"name": "req", "cat": "flow", "ph": "s", "id": 7,
             "pid": 2, "tid": 0, "ts": 10.0},
            {"name": "req", "cat": "flow", "ph": "f", "bp": "e", "id": 7,
             "pid": 1, "tid": 9, "ts": 10.0}]
        errs = validate_events(events)
        assert any("no enclosing slice" in e for e in errs)

    def test_name_mismatch_rejected(self):
        events = self.BASE + [
            {"name": "req", "cat": "flow", "ph": "s", "id": 7,
             "pid": 2, "tid": 0, "ts": 10.0},
            {"name": "other", "cat": "flow", "ph": "f", "bp": "e", "id": 7,
             "pid": 1, "tid": 1, "ts": 10.0}]
        errs = validate_events(events)
        assert any("mismatch" in e for e in errs)


# ---------------------------------------------------------------------------
# parent/child containment
# ---------------------------------------------------------------------------

class TestContainmentValidation:
    def test_nested_slices_pass(self):
        events = [_slice("run", 1, 0, 0.0, 100.0, cat="run"),
                  _slice("loop", 1, 0, 10.0, 50.0),
                  _slice("chunk", 1, 0, 10.0, 20.0)]
        assert validate_events(events) == []

    def test_escaping_child_rejected_with_span_path(self):
        # "chunk" starts inside "loop" but ends after it — the viewer
        # renders that as overlapping garbage, the validator names the
        # offender and the enclosing path
        events = [_slice("run", 1, 0, 0.0, 100.0, cat="run"),
                  _slice("loop", 1, 0, 10.0, 50.0),
                  _slice("chunk", 1, 0, 40.0, 30.0)]
        errs = validate_events(events)
        assert any("containment" in e and "'chunk'" in e for e in errs)
        (err,) = [e for e in errs if "containment" in e]
        assert "run/loop" in err  # the full enclosing span path
        assert "(1, 0)" in err    # the track it happened on

    def test_escaping_root_child_rejected(self):
        events = [_slice("run", 1, 0, 0.0, 100.0, cat="run"),
                  _slice("late", 1, 0, 90.0, 20.0)]
        errs = validate_events(events)
        assert any("containment" in e and "'late'" in e
                   and "'run'" in e for e in errs)

    def test_sibling_slices_may_touch(self):
        # back-to-back siblings sharing an edge are fine
        events = [_slice("run", 1, 0, 0.0, 100.0, cat="run"),
                  _slice("a", 1, 0, 0.0, 50.0),
                  _slice("b", 1, 0, 50.0, 50.0)]
        assert validate_events(events) == []

    def test_tracks_validated_independently(self):
        # an overlap across different tids is not a containment error
        events = [_slice("run", 1, 0, 0.0, 100.0, cat="run"),
                  _slice("m0", 1, 1, 40.0, 30.0),
                  _slice("m1", 1, 2, 50.0, 30.0)]
        assert validate_events(events) == []

    def test_rounding_jitter_tolerated(self):
        # exporter rounds ts/dur to 3 decimals of a microsecond; a
        # sub-tolerance overhang must not be flagged
        events = [_slice("run", 1, 0, 0.0, 100.0, cat="run"),
                  _slice("loop", 1, 0, 10.0, 50.0),
                  _slice("chunk", 1, 0, 10.0, 50.005)]
        assert validate_events(events) == []

    def test_real_traces_contain(self):
        for app in ("kmeans", "q1"):
            _, root = traced(app)
            assert validate_events(chrome_trace_events(root)) == []


# ---------------------------------------------------------------------------
# request identity
# ---------------------------------------------------------------------------

class TestRequestContext:
    def test_deterministic_derivation(self):
        a = RequestContext.derive(3, 7)
        b = RequestContext.derive(3, 7)
        assert a == b
        assert len(a.trace_id) == 32 and len(a.span_id) == 16
        int(a.trace_id, 16), int(a.span_id, 16)  # hex
        assert a.flow_id >= 0
        assert RequestContext.derive(3, 8) != a
        assert RequestContext.derive(4, 7) != a

    def test_timeline_lifecycle_order(self):
        tl = RequestTimeline(RequestContext.derive(0, 0))
        tl.mark("complete", 5.0)
        tl.mark("arrive", 1.0)
        tl.mark("dispatch", 3.0)
        assert [s for s, _ in tl.ordered()] == \
            ["arrive", "dispatch", "complete"]
        with pytest.raises(ValueError):
            tl.mark("nope", 0.0)


# ---------------------------------------------------------------------------
# profiling exports: flamegraphs and Prometheus text
# ---------------------------------------------------------------------------

class TestProfileExports:
    def test_collapse_stacks_self_time(self):
        root = Span("run", "run", 0.0, 10.0)
        loop = root.child("loopA", "loop", 0.0, 6.0)
        loop.child("m0", "machine", 0.0, 4.0)
        stacks = collapse_stacks(root)
        # self time = dur - children dur, in integer microseconds
        assert stacks["run"] == 4_000_000
        assert stacks["run;loopA"] == 2_000_000
        assert stacks["run;loopA;m0"] == 4_000_000

    def test_collapsed_render_and_write(self, tmp_path):
        _, root = traced("kmeans")
        text = render_collapsed(root)
        lines = text.strip().splitlines()
        assert lines == sorted(lines)
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert int(weight) > 0 and stack
        p = tmp_path / "flame.txt"
        write_collapsed(str(p), root)
        assert p.read_text() == text + "\n"

    def test_semicolons_in_frames_escaped(self):
        root = Span("a;b", "run", 0.0, 1.0)
        assert list(collapse_stacks(root)) == ["a,b"]

    def test_prometheus_text(self, tmp_path):
        m = MetricsRegistry()
        m.inc("serve.requests", 3.0, app="kmeans")
        m.gauge("serve.makespan_s", 0.5)
        m.observe("serve.latency_s", 0.1)
        m.observe("serve.latency_s", 0.3)
        text = prometheus_text(m)
        assert '# TYPE serve_requests counter' in text
        assert 'serve_requests{app="kmeans"} 3' in text
        assert "serve_makespan_s 0.5" in text
        assert 'serve_latency_s{quantile="0.99"}' in text
        assert "serve_latency_s_count 2" in text
        assert "serve_latency_s_sum" in text
        assert text.endswith("# EOF\n")
        p = tmp_path / "m.prom"
        write_prometheus(str(p), m)
        assert p.read_text() == text

    def test_prometheus_empty_registry(self):
        assert prometheus_text(MetricsRegistry()).endswith("# EOF\n")

    def test_prometheus_label_escaping(self):
        # the exposition format requires \\, \", and \n escaped inside
        # label values — a raw newline corrupts the whole scrape
        m = MetricsRegistry()
        m.inc("serve.requests", 1.0, app='k"means')
        m.inc("serve.requests", 2.0, app="a\\b")
        m.inc("serve.requests", 3.0, app="two\nlines")
        text = prometheus_text(m)
        assert 'app="k\\"means"' in text
        assert 'app="a\\\\b"' in text
        assert 'app="two\\nlines"' in text
        # no label value may leak an unescaped newline or quote
        for line in text.splitlines():
            if "{" not in line:
                continue
            labels = line[line.index("{") + 1:line.rindex("}")]
            assert "\n" not in labels
            body = labels
            for esc in ('\\\\', '\\"', '\\n'):
                body = body.replace(esc, "")
            # any quote left is a delimiter: value="...",
            assert body.count('"') % 2 == 0

    def test_prometheus_escaping_round_trips_distinct_values(self):
        # 'a\\nb' (literal backslash-n) and 'a\nb' (newline) must stay
        # distinguishable after escaping, else series silently merge
        m = MetricsRegistry()
        m.inc("serve.requests", 1.0, app="a\\nb")
        m.inc("serve.requests", 5.0, app="a\nb")
        text = prometheus_text(m)
        assert 'app="a\\\\nb"} 1' in text
        assert 'app="a\\nb"} 5' in text


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_registry_basics(self):
        m = MetricsRegistry()
        m.inc("a")
        m.inc("a", 2.0)
        m.inc("a", 5.0, loop="x")
        m.gauge("g", 7.0)
        m.observe("h", 1.0)
        m.observe("h", 3.0)
        assert m.counter("a") == 3.0
        assert m.counter("a", loop="x") == 5.0
        assert m.histogram_stats("h") == {"count": 2, "min": 1.0, "max": 3.0,
                                          "mean": 2.0, "p50": 3.0,
                                          "p90": 3.0, "p95": 3.0, "p99": 3.0}
        # empty histograms still expose the full key set (satellite fix:
        # consumers can index p99 without guarding on count)
        assert m.histogram_stats("absent") == {
            "count": 0, "min": 0.0, "max": 0.0, "mean": 0.0,
            "p50": 0.0, "p90": 0.0, "p95": 0.0, "p99": 0.0}
        snap = m.snapshot()
        assert snap["counters"]["a{loop=x}"] == 5.0
        text = m.render()
        assert "counters:" in text and "a{loop=x}" in text
        m.clear()
        assert m.render() == "(no metrics recorded)"

    def test_single_sample_histogram_well_defined(self):
        m = MetricsRegistry()
        m.observe("h", 2.5)
        st = m.histogram_stats("h")
        assert st == {"count": 1, "min": 2.5, "max": 2.5, "mean": 2.5,
                      "p50": 2.5, "p90": 2.5, "p95": 2.5, "p99": 2.5}

    def test_histogram_tail_percentiles_nearest_rank(self):
        m = MetricsRegistry()
        for v in range(1, 101):
            m.observe("lat", float(v))
        st = m.histogram_stats("lat")
        assert (st["p50"], st["p90"], st["p95"], st["p99"]) == \
            (51.0, 90.0, 95.0, 99.0)
        assert st["max"] == 100.0

    def test_executor_feeds_metrics(self):
        metrics = MetricsRegistry()
        sim = get_bundle("kmeans").simulate(metrics=metrics)
        assert metrics.counter("executor.loops_priced") == len(sim.loops)
        assert metrics.gauges["executor.total_seconds"] == sim.total_seconds
        for ls in sim.loops:
            st = metrics.histogram_stats("executor.loop_seconds",
                                         loop=ls.name)
            assert st["count"] >= 1

    def test_distarray_traps_feed_metrics(self):
        metrics = MetricsRegistry()
        prev = set_metrics(metrics)
        try:
            arr = PartitionedArray(list(range(100)), parts=4)
            set_reader_location(0)
            arr[3]       # partition 0: local
            arr[99]      # partition 3: remote
        finally:
            set_metrics(prev)
            set_reader_location(None)
        assert metrics.counter("distarray.local_reads") == 1
        assert metrics.counter("distarray.remote_reads") == 1
        assert metrics.counter("distarray.remote_bytes") == arr.elem_bytes
        assert metrics.counter("distarray.directory_lookups") == 2

    def test_replication_decision_is_counted(self):
        metrics = MetricsRegistry()
        get_bundle("pagerank").simulate(metrics=metrics)
        assert (metrics.counter("executor.replication_decisions")
                + metrics.counter("executor.remote_fetch_decisions")) >= 1


# ---------------------------------------------------------------------------
# typed diagnostics
# ---------------------------------------------------------------------------

class TestDiagnostics:
    def test_unknown_stencil_is_typed_and_attributed(self):
        c = get_bundle("pagerank").compiled("opt")
        diags = [d for d in c.diagnostics
                 if d.category is DiagCategory.UNKNOWN_STENCIL_FALLBACK]
        assert diags, "pagerank's gather loop must trip the fallback"
        d = diags[0]
        assert d.loop is not None
        assert "falling back" in d.message
        assert d.loop in d.render() and d.category.value in d.render()

    def test_warnings_is_a_derived_view(self):
        c = get_bundle("pagerank").compiled("opt")
        assert c.warnings == [d.message for d in c.report.diagnostics
                              if d.severity == "warning"]
        assert any("falling back" in w for w in c.warnings)

    def test_cuda_vector_reduce_diagnostic(self):
        from repro.apps.gda import gda_program
        from repro.pipeline import compile_program
        c = compile_program(gda_program(), "gpu",
                            apply_nested_transforms=False)
        # without Row-to-Column Reduce gda's column sum keeps a vector
        # accumulator on the device
        cats = [d.category for d in c.diagnostics]
        assert DiagCategory.CUDA_VECTOR_REDUCE in cats
        d = next(d for d in c.diagnostics
                 if d.category is DiagCategory.CUDA_VECTOR_REDUCE)
        assert d.loop is not None and d.data.get("kind")

    def test_gpu_transforms_remove_vector_reduce(self):
        c = get_bundle("gda").compiled("gpu")
        assert DiagCategory.CUDA_VECTOR_REDUCE not in \
               [d.category for d in c.diagnostics]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def run_cli(*argv) -> str:
    buf = io.StringIO()
    with redirect_stdout(buf):
        rc = tools.main(list(argv))
    assert rc == 0
    return buf.getvalue()


class TestCli:
    def test_profile_prints_breakdown(self):
        out = run_cli("kmeans", "--profile")
        assert "TOTAL" in out and "100.0%" in out
        assert "compute" in out and "comm" in out

    def test_profile_total_matches_sim(self):
        out = run_cli("kmeans", "--profile")
        sim = get_bundle("kmeans").simulate()
        assert f"{sim.total_seconds * 1e3:10.3f}".strip() in out

    def test_trace_out_writes_valid_trace(self, tmp_path):
        path = tmp_path / "km.json"
        run_cli("kmeans", "--trace-out", str(path))
        assert validate_file(str(path)) == []

    def test_metrics_flag(self):
        out = run_cli("q1", "--metrics")
        assert "counters:" in out and "executor.loops_priced" in out

    def test_staged_rejects_report_and_profile_flags(self):
        """Regression: --stage staged used to silently ignore --report."""
        for flags in (["--report"], ["--profile"],
                      ["--trace-out", "/tmp/x.json"], ["--metrics"]):
            assert tools.main(["kmeans", "--stage", "staged"] + flags) == 2

    def test_profile_needs_a_bundle(self, capsys):
        assert tools.main(["knn", "--profile"]) == 2
        assert "bundled dataset" in capsys.readouterr().err

    def test_gpu_profile(self, tmp_path):
        path = tmp_path / "lr.json"
        out = run_cli("logreg", "--target", "gpu", "--profile",
                      "--trace-out", str(path))
        assert "GPU" in out
        assert validate_file(str(path)) == []
