"""Legacy setup shim: lets ``pip install -e .`` work offline (no wheel
package available for PEP 660 editable builds)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("DMLL: Distributed Multiloop Language — reproduction of "
                 "'Have Abstraction and Eat Performance, Too' (CGO 2016)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
